// End-to-end video-server scenario (the news-on-demand workload of the
// paper's introduction):
//
//  1. synthesize MPEG-like VBR "videos" and fragment them into
//     uniform-display-time fragments (§2.1),
//  2. measure the fragment statistics the admission control consumes
//     (§2.3 "workload statistics are fed into the admission control"),
//  3. derive the admission limit from the analytic model,
//  4. run a striped multi-disk MediaServer at that limit for 20 minutes of
//     simulated time with stream churn (viewers joining/leaving), and
//  5. report the per-stream QoS actually delivered vs the contract.
//
// With --metrics-out=FILE, the run is instrumented with the observability
// layer and the final registry snapshot is written to FILE as JSON (see
// docs/OBSERVABILITY.md for the schema and metric names).
//
// Fault injection and graceful degradation (docs/FAULTS.md):
//   --fault=SPEC         inject faults, e.g.
//                        "slowdown:enter=0.01,exit=0.2,delay_max=0.05"
//   --fault-disk=D       apply the spec to disk D only (default: all)
//   --degrade=BOUND      defend this per-round glitch-rate bound by
//                        shedding streams when it is violated
//   --retries=R          re-issue deadline-cut fragments up to R times
//
// Rare-event analysis (docs/PERFORMANCE.md, "Variance reduction"):
//   --rare-event=SPEC    instead of simulating, estimate the deep-tail
//                        p_error for this content library by importance
//                        sampling, e.g. "streams=30,rounds=20000,reps=8"
//                        (streams defaults to the derived admission
//                        limit; see sim/rare_event_spec.h for all keys)
//
// Crash-safe checkpointing and deterministic resume (docs/RECOVERY.md):
//   --rounds=N           simulate N rounds (default 1200)
//   --checkpoint-every=K write a snapshot every K rounds
//   --checkpoint-dir=DIR directory for snapshot files (default ".")
//   --resume-from=PATH   resume from a snapshot file, or from the newest
//                        good snapshot in a checkpoint directory
//   --replay-verify      instead of one run, prove the checkpoint round-
//                        trips: run the scenario twice (fresh vs resumed
//                        from a mid-run snapshot) and require bit-identical
//                        trace events and metrics
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "core/admission.h"
#include "core/glitch_model.h"
#include "core/service_time_model.h"
#include "disk/presets.h"
#include "fault/degradation.h"
#include "fault/fault_spec.h"
#include "numeric/random.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/round_trace.h"
#include "recovery/blob.h"
#include "recovery/checkpoint.h"
#include "recovery/replay.h"
#include "recovery/snapshot.h"
#include "server/media_server.h"
#include "sim/importance_sampling.h"
#include "sim/rare_event_spec.h"
#include "workload/fragmentation.h"
#include "workload/size_distribution.h"
#include "workload/vbr_trace.h"

using namespace zonestream;  // example code; libraries never do this

namespace {

// App-private snapshot section holding the churn loop's own state (the
// library snapshots the server; the viewer arrival/departure process
// lives out here and must survive a crash too for bit-identical resume).
constexpr char kChurnSection[] = "app.video_server_sim";
constexpr uint32_t kChurnSectionVersion = 1;

struct ChurnState {
  numeric::Rng rng{5};
  std::vector<int> active;
  int64_t rejected = 0;
  int64_t finished_streams = 0;
  int64_t finished_glitches = 0;
  int64_t next_round = 0;  // first round not yet simulated
};

std::string EncodeChurnState(const ChurnState& churn) {
  recovery::BlobWriter out;
  out.PutU32(kChurnSectionVersion);
  out.PutString(churn.rng.SaveState());
  out.PutI64(churn.next_round);
  out.PutU64(churn.active.size());
  for (int id : churn.active) out.PutI64(id);
  out.PutI64(churn.rejected);
  out.PutI64(churn.finished_streams);
  out.PutI64(churn.finished_glitches);
  return out.Release();
}

common::Status DecodeChurnState(const std::string& payload,
                                ChurnState* out) {
  recovery::BlobReader in(payload);
  const uint32_t version = in.TakeU32();
  if (in.ok() && version != kChurnSectionVersion) {
    return common::Status::InvalidArgument(
        "unsupported video_server_sim churn-state version " +
        std::to_string(version));
  }
  ChurnState churn;
  const std::string rng_state = in.TakeString();
  churn.next_round = in.TakeI64();
  const uint64_t count = in.TakeU64();
  if (!in.ok() || count > in.remaining() / 8) {
    return common::Status::InvalidArgument(
        "video_server_sim churn state is truncated");
  }
  churn.active.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    churn.active.push_back(static_cast<int>(in.TakeI64()));
  }
  churn.rejected = in.TakeI64();
  churn.finished_streams = in.TakeI64();
  churn.finished_glitches = in.TakeI64();
  if (!in.AtEnd() || churn.next_round < 0 || churn.rejected < 0 ||
      churn.finished_streams < 0 || churn.finished_glitches < 0) {
    return common::Status::InvalidArgument(
        "malformed video_server_sim churn state");
  }
  if (auto status = churn.rng.LoadState(rng_state); !status.ok()) {
    return status;
  }
  *out = std::move(churn);
  return common::Status::Ok();
}

recovery::Snapshot MakeSnapshot(const server::MediaServer& server,
                                const obs::Registry* registry,
                                const ChurnState& churn, uint64_t seed) {
  recovery::Snapshot snapshot;
  snapshot.meta.round = churn.next_round;
  snapshot.meta.base_seed = seed;
  snapshot.meta.producer = "video_server_sim";
  snapshot.server = server.ExportState();
  if (registry != nullptr) snapshot.registry = registry->ExportState();
  snapshot.app_sections[kChurnSection] = EncodeChurnState(churn);
  return snapshot;
}

common::Status RestoreFromSnapshot(
    const recovery::Snapshot& snapshot,
    const std::shared_ptr<const workload::SizeDistribution>& sizes,
    server::MediaServer* server, obs::Registry* registry,
    ChurnState* churn) {
  if (!snapshot.server.has_value()) {
    return common::Status::InvalidArgument(
        "snapshot has no server section (not a video_server_sim snapshot?)");
  }
  const auto app = snapshot.app_sections.find(kChurnSection);
  if (app == snapshot.app_sections.end()) {
    return common::Status::InvalidArgument(
        "snapshot has no '" + std::string(kChurnSection) + "' section");
  }
  ChurnState restored;
  if (auto status = DecodeChurnState(app->second, &restored); !status.ok()) {
    return status;
  }
  // Every stream in this scenario draws from the one shared library-wide
  // size distribution, so the resolver ignores the per-stream state.
  if (auto status = server->RestoreState(
          *snapshot.server,
          [&sizes](const server::StreamSnapshotState&) { return sizes; });
      !status.ok()) {
    return status;
  }
  if (registry != nullptr && snapshot.registry.has_value()) {
    if (auto status = registry->ImportState(*snapshot.registry);
        !status.ok()) {
      return status;
    }
  }
  *churn = std::move(restored);
  return common::Status::Ok();
}

// Simulates rounds [churn->next_round, total_rounds): viewers join at ~6
// per round until the server is full and leave with probability 1/1200
// per round (20-minute mean sessions). Optionally writes a checkpoint
// every `checkpoint_every` rounds and/or captures an in-memory snapshot
// just before round `capture_at_round` (for --replay-verify).
common::Status RunChurnRounds(
    server::MediaServer* server, ChurnState* churn,
    const std::shared_ptr<const workload::SizeDistribution>& sizes,
    int64_t total_rounds, const obs::Registry* registry, uint64_t seed,
    recovery::CheckpointWriter* writer, int64_t checkpoint_every,
    int64_t capture_at_round, recovery::Snapshot* captured) {
  for (int64_t round = churn->next_round; round < total_rounds; ++round) {
    if (captured != nullptr && round == capture_at_round) {
      *captured = MakeSnapshot(*server, registry, *churn, seed);
    }
    for (int arrivals = 0; arrivals < 6; ++arrivals) {
      auto id = server->OpenStream(sizes);
      if (id.ok()) {
        churn->active.push_back(*id);
      } else {
        ++churn->rejected;
      }
    }
    for (size_t i = 0; i < churn->active.size();) {
      if (churn->rng.Uniform01() < 1.0 / 1200.0) {
        const auto stats = server->GetStreamStats(churn->active[i]);
        if (stats.ok()) {
          ++churn->finished_streams;
          churn->finished_glitches += stats->glitches;
        }
        (void)server->CloseStream(churn->active[i]);
        churn->active[i] = churn->active.back();
        churn->active.pop_back();
      } else {
        ++i;
      }
    }
    server->RunRound();
    churn->next_round = round + 1;
    if (writer != nullptr && checkpoint_every > 0 &&
        churn->next_round % checkpoint_every == 0) {
      auto path = writer->Write(MakeSnapshot(*server, registry, *churn, seed));
      if (!path.ok()) return path.status();
    }
  }
  return common::Status::Ok();
}

// --replay-verify: run the configured scenario fresh (capturing a
// snapshot at the halfway round), then again resumed from that snapshot
// after a round-trip through the wire encoding, and demand bit-identical
// trace tails and final metric registries.
int RunReplayVerify(const disk::DiskGeometry& viking,
                    const disk::SeekTimeModel& seek,
                    const server::MediaServerConfig& base_config,
                    const std::shared_ptr<const workload::SizeDistribution>&
                        sizes,
                    int64_t total_rounds) {
  const int64_t capture_round = total_rounds / 2;
  const auto run = [&](const recovery::Snapshot* resume_from)
      -> common::StatusOr<recovery::ReplayArtifacts> {
    obs::Registry registry;
    obs::RoundTraceRecorder trace;
    server::MediaServerConfig config = base_config;
    config.metrics = &registry;
    config.trace = &trace;
    auto server = server::MediaServer::Create(viking, seek, config);
    if (!server.ok()) return server.status();
    ChurnState churn;
    recovery::ReplayArtifacts artifacts;
    if (resume_from != nullptr) {
      if (auto status = RestoreFromSnapshot(*resume_from, sizes, &*server,
                                            &registry, &churn);
          !status.ok()) {
        return status;
      }
    }
    // Each round appends exactly one trace event per disk, so the tail
    // (events after the capture round) starts at a known index.
    const size_t tail_start =
        resume_from != nullptr
            ? 0
            : static_cast<size_t>(capture_round) *
                  static_cast<size_t>(config.num_disks);
    if (auto status = RunChurnRounds(
            &*server, &churn, sizes, total_rounds, &registry, config.seed,
            /*writer=*/nullptr, /*checkpoint_every=*/0,
            resume_from == nullptr ? capture_round : -1,
            resume_from == nullptr ? &artifacts.snapshot : nullptr);
        !status.ok()) {
      return status;
    }
    const std::vector<obs::RoundTraceEvent> events = trace.Snapshot();
    artifacts.tail_events.assign(events.begin() + tail_start, events.end());
    artifacts.final_registry = registry.ExportState();
    return artifacts;
  };
  const auto status = recovery::VerifyReplay(
      [&run] { return run(nullptr); },
      [&run](const recovery::Snapshot& snapshot) { return run(&snapshot); });
  if (!status.ok()) {
    std::fprintf(stderr, "replay-verify FAILED: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf(
      "replay-verify PASSED: snapshot at round %lld of %lld resumes "
      "bit-identically (trace events and metrics match exactly)\n",
      static_cast<long long>(capture_round),
      static_cast<long long>(total_rounds));
  return 0;
}

// --rare-event=SPEC: instead of running the churn simulation, estimate
// the deep-tail p_error of this content library's workload by importance
// sampling (sim/importance_sampling.h) and compare it with the analytic
// bound the admission decision was based on. This answers "how much
// headroom does the derived limit actually have" — the analytic bound is
// conservative, and the naive simulation cannot see probabilities below
// ~1/lifetimes.
int RunRareEvent(const disk::DiskGeometry& viking,
                 const disk::SeekTimeModel& seek,
                 const core::ServiceTimeModel& model,
                 const std::shared_ptr<const workload::SizeDistribution>&
                     sizes,
                 double round_length, int per_disk_limit,
                 const sim::RareEventSpec& spec) {
  const int streams = spec.streams > 0 ? spec.streams : per_disk_limit;
  const core::GlitchModel glitch_model(&model);
  const double analytic = glitch_model.ErrorBound(
      streams, round_length, spec.lifetime_rounds, spec.tolerated_glitches);

  sim::SimulatorConfig config;
  config.round_length_s = round_length;
  sim::ReplicationOptions replication;
  replication.replications = spec.replications;
  replication.base_seed = spec.base_seed;
  const auto estimate = sim::EstimateErrorProbabilityIS(
      viking, seek, streams, sizes, config, spec.lifetime_rounds,
      spec.tolerated_glitches, spec.rounds_per_replication, replication,
      spec.options);
  if (!estimate.ok()) {
    std::fprintf(stderr, "--rare-event: %s\n",
                 estimate.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nRare-event analysis (%s):\n"
      "  P[>=%d glitches in %d rounds] at N=%d streams/disk\n"
      "  analytic bound     %.3e\n"
      "  IS estimate        %.3e  [%.3e, %.3e] at %.0f%% confidence\n"
      "  per-round glitch p %.3e  (theta* = %.2f, ESS %.0f of %lld "
      "rounds, E[w] = %.3f)\n",
      FormatRareEventSpec(spec).c_str(), spec.tolerated_glitches,
      spec.lifetime_rounds, streams, analytic, estimate->point,
      estimate->ci_lower, estimate->ci_upper,
      100.0 * spec.options.confidence, estimate->glitch.point,
      estimate->glitch.theta, estimate->glitch.ess,
      static_cast<long long>(estimate->glitch.rounds),
      estimate->glitch.weight_mean);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out;
  std::string fault_text;
  std::string checkpoint_dir;
  std::string resume_from;
  std::string rare_event_text;
  bool rare_event = false;
  int fault_disk = -1;
  double degrade_bound = -1.0;
  int retries = 0;
  bool parity = false;
  int repair_throttle = 0;
  int64_t repair_stripes = 5000;
  int64_t total_rounds = 1200;
  int64_t checkpoint_every = 0;
  bool replay_verify = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--fault=", 8) == 0) {
      fault_text = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--fault-disk=", 13) == 0) {
      fault_disk = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--degrade=", 10) == 0) {
      degrade_bound = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--retries=", 10) == 0) {
      retries = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--parity") == 0) {
      parity = true;
    } else if (std::strncmp(argv[i], "--repair-throttle=", 18) == 0) {
      repair_throttle = std::atoi(argv[i] + 18);
    } else if (std::strncmp(argv[i], "--repair-stripes=", 17) == 0) {
      repair_stripes = std::atoll(argv[i] + 17);
    } else if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      total_rounds = std::atoll(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--checkpoint-every=", 19) == 0) {
      checkpoint_every = std::atoll(argv[i] + 19);
    } else if (std::strncmp(argv[i], "--checkpoint-dir=", 17) == 0) {
      checkpoint_dir = argv[i] + 17;
    } else if (std::strncmp(argv[i], "--resume-from=", 14) == 0) {
      resume_from = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--replay-verify") == 0) {
      replay_verify = true;
    } else if (std::strncmp(argv[i], "--rare-event=", 13) == 0) {
      rare_event_text = argv[i] + 13;
      rare_event = true;
    } else if (std::strcmp(argv[i], "--rare-event") == 0) {
      rare_event = true;  // empty spec: all defaults
    } else {
      std::fprintf(stderr,
                   "usage: %s [--metrics-out=FILE] [--fault=SPEC] "
                   "[--fault-disk=D] [--degrade=BOUND] [--retries=R]\n"
                   "          [--parity] [--repair-throttle=T] "
                   "[--repair-stripes=S]\n"
                   "          [--rounds=N] [--checkpoint-every=K] "
                   "[--checkpoint-dir=DIR]\n"
                   "          [--resume-from=FILE|DIR] [--replay-verify] "
                   "[--rare-event[=SPEC]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (total_rounds <= 0) {
    std::fprintf(stderr, "--rounds must be positive\n");
    return 2;
  }
  // --- 1. Content preparation -------------------------------------------
  workload::VbrTraceConfig trace_config;
  trace_config.mean_bandwidth_bps = 200e3;   // ~1.6 Mbit/s MPEG-2 video
  trace_config.bandwidth_stddev_bps = 95e3;
  trace_config.scene_correlation = 0.9;
  auto generator = workload::VbrTraceGenerator::Create(trace_config, 2024);
  if (!generator.ok()) return 1;

  std::vector<workload::Fragment> all_fragments;
  const double round_length = 1.0;
  for (int video = 0; video < 20; ++video) {
    const workload::BandwidthProfile profile =
        generator->Generate(/*duration_s=*/600.0);  // 10-minute clips
    auto fragments = workload::FragmentObject(profile, round_length);
    if (!fragments.ok()) return 1;
    all_fragments.insert(all_fragments.end(), fragments->begin(),
                         fragments->end());
  }

  // --- 2. Workload statistics -------------------------------------------
  const workload::FragmentMoments moments =
      workload::MeasureFragmentMoments(all_fragments);
  std::printf(
      "Content library: %lld fragments, mean %.1f KB, stddev %.1f KB\n",
      static_cast<long long>(moments.count), moments.mean_bytes / 1e3,
      std::sqrt(moments.variance_bytes2) / 1e3);

  // --- 3. Admission limit from the analytic model ------------------------
  const disk::DiskGeometry viking = disk::QuantumViking2100();
  const disk::SeekTimeModel seek = disk::QuantumViking2100Seek();
  auto model = core::ServiceTimeModel::ForMultiZoneDisk(
      viking, seek, moments.mean_bytes, moments.variance_bytes2);
  if (!model.ok()) return 1;
  const int rounds_per_stream = 1200;  // 20-minute viewing sessions
  const int tolerated_glitches = 12;   // 1% of rounds
  const int per_disk_limit = core::MaxStreamsByGlitchRate(
      *model, round_length, rounds_per_stream, tolerated_glitches, 0.01);
  std::printf(
      "Admission model: <=%d streams/disk keep P[>%d glitches in %d "
      "rounds] under 1%%\n",
      per_disk_limit, tolerated_glitches, rounds_per_stream);

  if (rare_event) {
    auto spec = sim::ParseRareEventSpec(rare_event_text);
    if (!spec.ok()) {
      std::fprintf(stderr, "--rare-event: %s\n",
                   spec.status().ToString().c_str());
      return 2;
    }
    const std::shared_ptr<const workload::SizeDistribution> rare_sizes =
        std::make_shared<workload::GammaSizeDistribution>(
            *workload::GammaSizeDistribution::Create(
                moments.mean_bytes, moments.variance_bytes2));
    return RunRareEvent(viking, seek, *model, rare_sizes, round_length,
                        per_disk_limit, *spec);
  }

  // --- 4. Run the striped server with churn ------------------------------
  obs::Registry registry;
  obs::RoundTraceRecorder trace;
  server::MediaServerConfig server_config;
  server_config.num_disks = 4;
  server_config.round_length_s = round_length;
  server_config.per_disk_stream_limit = per_disk_limit;
  server_config.seed = 99;
  if (!metrics_out.empty()) {
    server_config.metrics = &registry;
    server_config.trace = &trace;
  }
  if (!fault_text.empty()) {
    auto spec = fault::ParseFaultSpec(fault_text);
    if (!spec.ok()) {
      std::fprintf(stderr, "--fault: %s\n",
                   spec.status().message().c_str());
      return 2;
    }
    server_config.faults = *spec;
    server_config.fault_disk = fault_disk;
    std::printf("Fault injection: %s (disk %s)\n",
                fault::FormatFaultSpec(server_config.faults).c_str(),
                fault_disk < 0 ? "all" : std::to_string(fault_disk).c_str());
  }
  if (degrade_bound > 0.0) {
    fault::DegradationPolicy policy;
    policy.glitch_rate_bound = degrade_bound;
    policy.window_rounds = 20;
    policy.trigger_windows = 2;
    policy.recovery_windows = 3;
    server_config.degradation = policy;
    std::printf("Degradation controller armed: bound %.4g/stream-round\n",
                degrade_bound);
  }
  server_config.max_fragment_retries = retries;
  if (repair_throttle > 0 && !parity) {
    std::fprintf(stderr, "--repair-throttle requires --parity\n");
    return 2;
  }
  if (parity) {
    server_config.parity = true;
    std::printf(
        "Parity striping: RAID-5 over %d disks, %d data phases, capacity "
        "%d streams\n",
        server_config.num_disks, server_config.num_disks - 1,
        (server_config.num_disks - 1) * per_disk_limit);
    if (repair_throttle > 0) {
      server::RepairPolicy repair;
      repair.throttle_per_round = repair_throttle;
      repair.total_stripes = repair_stripes;
      repair.read_bytes = moments.mean_bytes;
      server_config.repair = repair;
      // Hold degraded service to the bound that still meets the QoS
      // contract while each survivor absorbs reconstruction fan-out plus
      // the repair throttle share (§3.2 with 2N + R requests per disk).
      auto degraded_limit = server::MediaServer::PlanDegradedLimit(
          viking, seek, moments.mean_bytes, moments.variance_bytes2,
          round_length, 0.01, repair);
      if (!degraded_limit.ok()) {
        std::fprintf(stderr, "--repair-throttle: %s\n",
                     degraded_limit.status().ToString().c_str());
        return 2;
      }
      server_config.degraded_per_disk_stream_limit = *degraded_limit;
      std::printf(
          "Repair: %d stripes/round onto the spare (%lld stripes total), "
          "degraded admission <=%d streams/disk\n",
          repair_throttle, static_cast<long long>(repair_stripes),
          *degraded_limit);
    }
  }

  const std::shared_ptr<const workload::SizeDistribution> sizes =
      std::make_shared<workload::GammaSizeDistribution>(
          *workload::GammaSizeDistribution::Create(moments.mean_bytes,
                                                   moments.variance_bytes2));

  if (replay_verify) {
    return RunReplayVerify(viking, seek, server_config, sizes, total_rounds);
  }

  auto server = server::MediaServer::Create(viking, seek, server_config);
  if (!server.ok()) return 1;

  ChurnState churn;
  if (!resume_from.empty()) {
    // A directory means "newest good snapshot in it"; anything else is
    // taken as a snapshot file path.
    common::StatusOr<recovery::Snapshot> snapshot =
        common::Status::InvalidArgument("unset");
    auto listing = recovery::ListSnapshotFiles(resume_from);
    if (listing.ok()) {
      auto loaded = recovery::LoadLatestGoodSnapshot(resume_from);
      if (!loaded.ok()) {
        std::fprintf(stderr, "--resume-from: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
      }
      for (const std::string& warning : loaded->rejected) {
        std::fprintf(stderr, "--resume-from: skipped corrupt snapshot: %s\n",
                     warning.c_str());
      }
      std::printf("Resuming from %s\n", loaded->path.c_str());
      snapshot = std::move(loaded->snapshot);
    } else {
      snapshot = recovery::LoadSnapshotFile(resume_from);
      if (!snapshot.ok()) {
        std::fprintf(stderr, "--resume-from: %s\n",
                     snapshot.status().ToString().c_str());
        return 1;
      }
      std::printf("Resuming from %s\n", resume_from.c_str());
    }
    if (auto status = RestoreFromSnapshot(
            *snapshot, sizes, &*server,
            metrics_out.empty() ? nullptr : &registry, &churn);
        !status.ok()) {
      std::fprintf(stderr, "--resume-from: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("Restored state at round %lld (%zu active streams)\n",
                static_cast<long long>(churn.next_round),
                churn.active.size());
    if (churn.next_round >= total_rounds) {
      std::fprintf(stderr,
                   "snapshot is already at round %lld; nothing to resume "
                   "(use --rounds to extend the run)\n",
                   static_cast<long long>(churn.next_round));
      return 2;
    }
  }

  std::unique_ptr<recovery::CheckpointWriter> writer;
  if (checkpoint_every > 0) {
    recovery::CheckpointWriterOptions options;
    options.directory = checkpoint_dir.empty() ? "." : checkpoint_dir;
    auto created = recovery::CheckpointWriter::Create(options);
    if (!created.ok()) {
      std::fprintf(stderr, "--checkpoint-dir: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    writer = std::make_unique<recovery::CheckpointWriter>(
        std::move(*created));
    std::printf("Checkpointing every %lld rounds to %s\n",
                static_cast<long long>(checkpoint_every),
                options.directory.c_str());
  }

  if (auto status = RunChurnRounds(
          &*server, &churn, sizes, total_rounds,
          metrics_out.empty() ? nullptr : &registry, server_config.seed,
          writer.get(), checkpoint_every, /*capture_at_round=*/-1,
          /*captured=*/nullptr);
      !status.ok()) {
    std::fprintf(stderr, "checkpoint write failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // --- 5. Delivered QoS ---------------------------------------------------
  const server::ServerStats stats = server->GetServerStats();
  std::printf(
      "\nAfter %lld rounds: %d active streams (cap %d), %lld arrivals "
      "rejected by admission control\n",
      static_cast<long long>(stats.rounds), server->active_streams(),
      server->max_streams(), static_cast<long long>(churn.rejected));
  std::printf("Fragments served: %lld, glitches: %lld (rate %.5f%%)\n",
              static_cast<long long>(stats.fragments_served),
              static_cast<long long>(stats.glitches),
              100.0 * stats.glitches /
                  std::max<int64_t>(1, stats.fragments_served +
                                           stats.glitches));

  common::TablePrinter util("Per-disk utilization (busy fraction)");
  util.SetHeader({"disk", "utilization"});
  for (size_t d = 0; d < stats.disk_utilization.size(); ++d) {
    util.AddRow({std::to_string(d),
                 common::FormatFixed(stats.disk_utilization[d], 3)});
  }
  util.Print();

  // QoS contract check over streams still active at the end.
  int worst_glitches = 0;
  int violators = 0;
  for (int id : churn.active) {
    const auto stream_stats = server->GetStreamStats(id);
    if (!stream_stats.ok()) continue;
    worst_glitches = std::max<int>(worst_glitches,
                                   static_cast<int>(stream_stats->glitches));
    if (stream_stats->glitches >= tolerated_glitches) ++violators;
  }
  std::printf(
      "\nQoS: worst active stream saw %d glitches (contract: <%d); %d of "
      "%zu active streams violated the contract; %lld finished streams "
      "accumulated %lld glitches.\n",
      worst_glitches, tolerated_glitches, violators, churn.active.size(),
      static_cast<long long>(churn.finished_streams),
      static_cast<long long>(churn.finished_glitches));

  if (parity) {
    std::printf(
        "\nParity/repair: %lld fragments reconstructed via degraded "
        "reads, %lld rounds degraded, %lld stripes rebuilt",
        static_cast<long long>(stats.reconstructed_fragments),
        static_cast<long long>(stats.rounds_degraded),
        static_cast<long long>(stats.repair_stripes_rebuilt));
    if (server->rebuild_active()) {
      std::printf(" (rebuild of disk %d still running)\n",
                  server->rebuild_target_disk());
    } else if (stats.repair_stripes_rebuilt > 0) {
      std::printf(" (disk %d restored onto its spare)\n",
                  server->rebuild_target_disk());
    } else {
      std::printf("\n");
    }
  }

  const std::vector<fault::DegradationEvent> degradation_events =
      server->degradation_events();
  if (!fault_text.empty() || degrade_bound > 0.0 || retries > 0) {
    std::printf(
        "\nDegradation: final state %s, %lld streams shed, %lld fragments "
        "retried, %lld dropped, admissions %s\n",
        fault::DegradationStateName(server->degradation_state()),
        static_cast<long long>(stats.streams_shed),
        static_cast<long long>(stats.fragments_retried),
        static_cast<long long>(stats.fragments_dropped),
        server->admissions_open() ? "open" : "closed");
    for (const fault::DegradationEvent& event : degradation_events) {
      std::printf("  round %lld: %s -> %s (shed %d, window rate %.5f)\n",
                  static_cast<long long>(event.round),
                  fault::DegradationStateName(event.from),
                  fault::DegradationStateName(event.to), event.shed_streams,
                  event.window_glitch_rate);
    }
  }

  if (!metrics_out.empty()) {
    std::string degradation_json = "[";
    for (size_t i = 0; i < degradation_events.size(); ++i) {
      const fault::DegradationEvent& event = degradation_events[i];
      if (i > 0) degradation_json += ",";
      degradation_json +=
          "{\"round\":" + std::to_string(event.round) + ",\"from\":\"" +
          fault::DegradationStateName(event.from) + "\",\"to\":\"" +
          fault::DegradationStateName(event.to) +
          "\",\"shed_streams\":" + std::to_string(event.shed_streams) +
          ",\"window_glitch_rate\":" +
          std::to_string(event.window_glitch_rate) + "}";
    }
    degradation_json += "]";
    const std::string json = "{\"schema\":\"zonestream-metrics-v1\","
                             "\"degradation_events\":" + degradation_json +
                             ",\"metrics\":" +
                             obs::RegistryToJson(registry.Snapshot()) + "}\n";
    std::FILE* f = std::fopen(metrics_out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   metrics_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nWrote %zu metrics-snapshot bytes (%zu trace events "
                "recorded) to %s\n",
                json.size(), trace.size(), metrics_out.c_str());
  }
  return 0;
}
