// Disk calibration workflow: onboard a drive that is not a preset.
//
//  1. "Measure" seek times (here: synthesized from the Viking with noise,
//     standing in for a real seek micro-benchmark) and fit the two-regime
//     seek model.
//  2. Provide the drive's measured zone table (non-linear, unequal
//     cylinder spans) via DiskGeometry::CreateFromZoneTable.
//  3. Run the admission pipeline on the calibrated drive and compare with
//     the linear-ramp approximation the paper would use.
#include <cstdio>
#include <random>
#include <vector>

#include "common/table_printer.h"
#include "core/admission.h"
#include "core/service_time_model.h"
#include "disk/disk_geometry.h"
#include "disk/presets.h"
#include "disk/seek_calibration.h"
#include "numeric/random.h"

using namespace zonestream;  // example code; libraries never do this

int main() {
  // --- 1. Seek calibration ----------------------------------------------
  const disk::SeekTimeModel truth = disk::QuantumViking2100Seek();
  numeric::Rng rng(1);
  std::normal_distribution<double> noise(0.0, 0.15e-3);  // 0.15 ms jitter
  std::vector<disk::SeekMeasurement> measurements;
  for (int d = 16; d <= 6720; d += 16) {
    disk::SeekMeasurement sample;
    sample.distance_cylinders = d;
    sample.seek_time_s = truth.SeekTime(d) + noise(rng.engine());
    if (sample.seek_time_s <= 0.0) sample.seek_time_s = 1e-5;
    measurements.push_back(sample);
  }
  auto fit = disk::FitSeekModel(std::move(measurements));
  if (!fit.ok()) {
    std::fprintf(stderr, "seek fit: %s\n", fit.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Fitted seek model (rmse %.3f ms):\n"
      "  d < %d:  %.4f ms + %.5f ms*sqrt(d)\n"
      "  d >= %d: %.4f ms + %.5f us*d\n\n",
      1e3 * fit->rmse_s, fit->parameters.threshold_cylinders,
      1e3 * fit->parameters.sqrt_intercept_s,
      1e3 * fit->parameters.sqrt_coefficient,
      fit->parameters.threshold_cylinders,
      1e3 * fit->parameters.linear_intercept_s,
      1e6 * fit->parameters.linear_coefficient);
  auto seek = disk::SeekTimeModel::Create(fit->parameters);
  if (!seek.ok()) return 1;

  // --- 2. Measured zone table -------------------------------------------
  const std::vector<disk::ZoneSpec> zone_table = {
      {300, 58368.0}, {500, 60000.0}, {700, 64000.0},  {900, 64000.0},
      {900, 72000.0}, {900, 80000.0}, {800, 86000.0},  {700, 90000.0},
      {600, 94000.0}, {420, 95744.0},
  };
  auto measured = disk::DiskGeometry::CreateFromZoneTable(zone_table, 8.34e-3);
  if (!measured.ok()) return 1;

  common::TablePrinter zones("Measured zone table");
  zones.SetHeader({"zone", "cylinders", "track bytes", "hit prob"});
  for (const disk::ZoneInfo& zone : measured->zones()) {
    zones.AddRow({std::to_string(zone.index + 1),
                  std::to_string(zone.num_cylinders),
                  common::FormatFixed(zone.track_capacity_bytes, 0),
                  common::FormatFixed(zone.hit_probability, 4)});
  }
  zones.Print();

  // --- 3. Admission on the calibrated drive ------------------------------
  auto model = core::ServiceTimeModel::ForMultiZoneDisk(*measured, *seek,
                                                        200e3, 1e10);
  if (!model.ok()) return 1;
  const int measured_nmax =
      core::MaxStreamsByLateProbability(*model, 1.0, 0.01);

  // The paper's linear-ramp approximation of the same drive.
  auto linear_model = core::ServiceTimeModel::ForMultiZoneDisk(
      disk::QuantumViking2100(), disk::QuantumViking2100Seek(), 200e3, 1e10);
  std::printf(
      "\nAdmission at p_late <= 1%%: calibrated drive N_max = %d; the "
      "linear C_min..C_max ramp approximation gives %d.\n",
      measured_nmax,
      core::MaxStreamsByLateProbability(*linear_model, 1.0, 0.01));
  return 0;
}
