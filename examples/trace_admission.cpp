// Trace-driven admission: the content-ingestion workflow for a server
// operator with recorded MPEG material.
//
//  1. Synthesize a "recorded" VBR movie and store its fragment-size trace
//     to disk (stand-in for a real encoder-produced trace; the file
//     format is one size per line — drop in your own).
//  2. Load the trace back, measure the moments the admission control
//     consumes (§2.3), and derive N_max.
//  3. Replay the *actual trace* (not a fitted distribution) through the
//     simulator at the admission limit to verify the contract holds for
//     this specific movie.
#include <cstdio>
#include <memory>
#include <string>

#include "core/admission.h"
#include "core/service_time_model.h"
#include "disk/presets.h"
#include "sim/round_simulator.h"
#include "workload/fragmentation.h"
#include "workload/trace_io.h"
#include "workload/vbr_trace.h"

using namespace zonestream;  // example code; libraries never do this

int main(int argc, char** argv) {
  const std::string trace_path =
      argc > 1 ? argv[1] : "/tmp/zonestream_example_trace.txt";
  const double round = 1.0;

  // --- 1. Produce a recorded trace (skip if the user supplied one). -----
  if (argc <= 1) {
    workload::VbrTraceConfig config;
    config.mean_bandwidth_bps = 200e3;
    config.bandwidth_stddev_bps = 100e3;
    auto generator = workload::VbrTraceGenerator::Create(config, 31337);
    if (!generator.ok()) return 1;
    const workload::BandwidthProfile profile = generator->Generate(3600.0);
    auto fragments = workload::FragmentObject(profile, round);
    if (!fragments.ok()) return 1;
    std::vector<double> sizes;
    sizes.reserve(fragments->size());
    for (const workload::Fragment& fragment : *fragments) {
      sizes.push_back(fragment.bytes);
    }
    auto write = workload::WriteSizeTrace(trace_path, sizes,
                                          "synthetic 1h VBR movie");
    if (!write.ok()) {
      std::fprintf(stderr, "write: %s\n", write.ToString().c_str());
      return 1;
    }
    std::printf("Wrote %zu-fragment trace to %s\n", sizes.size(),
                trace_path.c_str());
  }

  // --- 2. Load and measure. ---------------------------------------------
  auto trace = workload::ReadSizeTrace(trace_path);
  if (!trace.ok()) {
    std::fprintf(stderr, "read: %s\n", trace.status().ToString().c_str());
    return 1;
  }
  const workload::TraceMoments moments = workload::MeasureTraceMoments(*trace);
  std::printf(
      "Trace: %lld fragments, mean %.1f KB, stddev %.1f KB\n",
      static_cast<long long>(moments.count), moments.mean_bytes / 1e3,
      std::sqrt(moments.variance_bytes2) / 1e3);

  auto model = core::ServiceTimeModel::ForMultiZoneDisk(
      disk::QuantumViking2100(), disk::QuantumViking2100Seek(),
      moments.mean_bytes, moments.variance_bytes2);
  if (!model.ok()) return 1;
  const int n_max = core::MaxStreamsByLateProbability(*model, round, 0.01);
  std::printf("Admission from trace moments: N_max = %d (p_late <= 1%%)\n",
              n_max);

  // --- 3. Replay the trace itself at the limit. --------------------------
  sim::SimulatorConfig sim_config;
  sim_config.round_length_s = round;
  sim_config.seed = 11;
  const std::vector<double>& trace_ref = *trace;
  auto simulator = sim::RoundSimulator::Create(
      disk::QuantumViking2100(), disk::QuantumViking2100Seek(), n_max,
      [&trace_ref](int stream_id)
          -> std::unique_ptr<workload::FragmentSource> {
        // Offset each stream so concurrent viewers are at different
        // positions in the movie.
        auto source = workload::TraceSource::Create(
            trace_ref, stream_id * trace_ref.size() / 64);
        ZS_CHECK(source.ok());
        return std::make_unique<workload::TraceSource>(*std::move(source));
      },
      sim_config);
  if (!simulator.ok()) return 1;
  const sim::ProbabilityEstimate p_late =
      simulator->EstimateLateProbability(20000);
  std::printf(
      "Trace replay at N = %d: simulated p_late = %.5f [%.5f, %.5f] — "
      "analytic bound %.5f\n",
      n_max, p_late.point, p_late.ci_lower, p_late.ci_upper,
      model->LateBound(n_max, round).bound);
  return 0;
}
