// zonestream_admitd: the admission-control daemon (§5 deployed as a
// long-running service).
//
//   zonestream_admitd --socket PATH [options]
//
//   --socket PATH         unix-domain socket to listen on (required)
//   --config FILE         server config (src/server/server_config.h):
//                         builds the admission table for the class
//                         tolerances from the spec's disk/workload/QoS
//                         sections and publishes scale = disks
//   --table FILE          pre-serialized AdmissionTable text (the §5
//                         offline-build flow: plan elsewhere, ship the
//                         table). Mutually exclusive with --config.
//   --limits N,N,...      direct per-class limit override (one integer
//                         per class, no table) — for tests and manual
//                         operation
//   --classes SPEC        comma list of name:tolerance, strictly
//                         ascending by tolerance
//                         (default gold:0.001,silver:0.01,bronze:0.05)
//   --scale N             limit-scale override (default: disks from
//                         --config, else 1)
//   --shards N            session-registry shards (default 64)
//   --capacity N          session-registry capacity (default 1048576)
//   --checkpoint-dir DIR  durable checkpoints: resume from the latest
//                         good snapshot at startup, write one on the
//                         `checkpoint` op and at shutdown
//   --poll-ms N           poll interval (default 100)
//
// Talk to it with `zonestream_ctl admitd <op> --socket PATH` (admit,
// teardown, transition, stats, checkpoint, digest, shutdown) — see
// docs/SERVICE.md for the full operational walkthrough, including the
// kill -9 / restart / digest bit-identity check.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/service_time_model.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"
#include "obs/metrics.h"
#include "recovery/checkpoint.h"
#include "recovery/snapshot.h"
#include "server/server_config.h"
#include "service/admission_service.h"
#include "service/daemon.h"
#include "service/stats_format.h"

using namespace zonestream;  // example code; libraries never do this

namespace {

service::AdmitDaemon* g_daemon = nullptr;

void HandleSignal(int /*signum*/) {
  if (g_daemon != nullptr) g_daemon->RequestShutdown();
}

common::StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return common::Status::NotFound("cannot open " + path);
  }
  std::string content;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return common::Status::Internal("read error on " + path);
  return content;
}

// "gold:0.001,silver:0.01" -> class configs (validated by Create).
common::StatusOr<std::vector<service::AdmissionClassConfig>> ParseClasses(
    const std::string& spec) {
  std::vector<service::AdmissionClassConfig> classes;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    const size_t colon = item.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= item.size()) {
      return common::Status::InvalidArgument(
          "class spec entry '" + item + "' is not name:tolerance");
    }
    service::AdmissionClassConfig cls;
    cls.name = item.substr(0, colon);
    char* parse_end = nullptr;
    cls.tolerance = std::strtod(item.c_str() + colon + 1, &parse_end);
    if (parse_end == nullptr || *parse_end != '\0') {
      return common::Status::InvalidArgument(
          "bad tolerance in class spec entry '" + item + "'");
    }
    classes.push_back(std::move(cls));
    start = end + 1;
  }
  return classes;
}

struct Args {
  std::string socket;
  std::string config;
  std::string table;
  std::string classes = "gold:0.001,silver:0.01,bronze:0.05";
  std::string limits;
  std::string checkpoint_dir;
  int64_t scale = 0;  // 0 = derive (disks from --config, else 1)
  int shards = 64;
  int capacity = 1 << 20;
  int poll_ms = 100;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (flag == "--socket" && (value = next())) {
      args->socket = value;
    } else if (flag == "--config" && (value = next())) {
      args->config = value;
    } else if (flag == "--table" && (value = next())) {
      args->table = value;
    } else if (flag == "--classes" && (value = next())) {
      args->classes = value;
    } else if (flag == "--limits" && (value = next())) {
      args->limits = value;
    } else if (flag == "--checkpoint-dir" && (value = next())) {
      args->checkpoint_dir = value;
    } else if (flag == "--scale" && (value = next())) {
      args->scale = std::atoll(value);
    } else if (flag == "--shards" && (value = next())) {
      args->shards = std::atoi(value);
    } else if (flag == "--capacity" && (value = next())) {
      args->capacity = std::atoi(value);
    } else if (flag == "--poll-ms" && (value = next())) {
      args->poll_ms = std::atoi(value);
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->socket.empty()) {
    std::fprintf(stderr, "--socket is required\n");
    return false;
  }
  if (!args->config.empty() && !args->table.empty()) {
    std::fprintf(stderr, "--config and --table are mutually exclusive\n");
    return false;
  }
  return true;
}

int Run(const Args& args) {
  auto classes = ParseClasses(args.classes);
  if (!classes.ok()) {
    std::fprintf(stderr, "classes: %s\n",
                 classes.status().ToString().c_str());
    return 1;
  }

  obs::Registry registry;
  service::AdmissionServiceConfig config;
  config.classes = *classes;
  config.limit_scale = args.scale > 0 ? args.scale : 1;
  config.registry.shards = args.shards;
  config.registry.capacity = args.capacity;
  config.metrics = &registry;
  auto service = service::AdmissionService::Create(config);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  // Admission table: built from a server config, or shipped as text.
  if (!args.config.empty()) {
    const auto spec = server::LoadServerSpec(args.config);
    if (!spec.ok()) {
      std::fprintf(stderr, "config: %s\n", spec.status().ToString().c_str());
      return 1;
    }
    auto geometry = disk::DiskGeometry::Create(spec->disk_parameters);
    auto seek = disk::SeekTimeModel::Create(spec->seek_parameters);
    if (!geometry.ok() || !seek.ok()) {
      std::fprintf(stderr, "config: bad disk model\n");
      return 1;
    }
    auto model = core::ServiceTimeModel::ForMultiZoneDisk(
        *geometry, *seek, spec->fragment_mean_bytes,
        spec->fragment_variance_bytes2);
    if (!model.ok()) {
      std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
      return 1;
    }
    std::vector<double> tolerances;
    for (const auto& cls : *classes) tolerances.push_back(cls.tolerance);
    auto table = core::AdmissionTable::Build(
        *model, spec->criterion, spec->round_length_s, tolerances,
        spec->session_rounds, spec->tolerated_glitches);
    if (!table.ok()) {
      std::fprintf(stderr, "table: %s\n", table.status().ToString().c_str());
      return 1;
    }
    (*service)->PublishTable(*table);
    // One table row bounds streams per disk; the deployment serves
    // `disks` phase groups at that level.
    (*service)->PublishScale(args.scale > 0 ? args.scale
                                            : spec->num_disks);
  } else if (!args.table.empty()) {
    const auto text = ReadWholeFile(args.table);
    if (!text.ok()) {
      std::fprintf(stderr, "table: %s\n", text.status().ToString().c_str());
      return 1;
    }
    auto table = core::AdmissionTable::Deserialize(*text);
    if (!table.ok()) {
      std::fprintf(stderr, "table: %s\n", table.status().ToString().c_str());
      return 1;
    }
    (*service)->PublishTable(*table);
    if (args.scale > 0) (*service)->PublishScale(args.scale);
  }
  if (!args.limits.empty()) {
    std::vector<int64_t> limits;
    const char* cursor = args.limits.c_str();
    while (*cursor != '\0') {
      char* end = nullptr;
      limits.push_back(std::strtoll(cursor, &end, 10));
      if (end == cursor) break;
      cursor = *end == ',' ? end + 1 : end;
    }
    const auto status = (*service)->PublishLimits(limits);
    if (!status.ok()) {
      std::fprintf(stderr, "limits: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // Checkpointing: resume first, then arm the writer.
  std::unique_ptr<recovery::CheckpointWriter> writer;
  if (!args.checkpoint_dir.empty()) {
    auto loaded = recovery::LoadLatestGoodSnapshot(args.checkpoint_dir);
    if (loaded.ok()) {
      for (const std::string& rejected : loaded->rejected) {
        std::fprintf(stderr, "warning: skipped corrupt snapshot: %s\n",
                     rejected.c_str());
      }
      if (loaded->snapshot.service.has_value()) {
        const auto status =
            (*service)->RestoreState(*loaded->snapshot.service);
        if (!status.ok()) {
          std::fprintf(stderr, "restore from %s: %s\n",
                       loaded->path.c_str(), status.ToString().c_str());
          return 1;
        }
        std::fprintf(stderr,
                     "resumed %lld sessions from %s (digest %016llx)\n",
                     static_cast<long long>(
                         loaded->snapshot.service->sessions.size()),
                     loaded->path.c_str(),
                     static_cast<unsigned long long>((*service)->Digest()));
      }
    } else if (loaded.status().code() != common::StatusCode::kNotFound) {
      std::fprintf(stderr, "recovery scan: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    recovery::CheckpointWriterOptions writer_options;
    writer_options.directory = args.checkpoint_dir;
    writer_options.basename = "admitd";
    auto writer_or = recovery::CheckpointWriter::Create(writer_options);
    if (!writer_or.ok()) {
      std::fprintf(stderr, "checkpoint writer: %s\n",
                   writer_or.status().ToString().c_str());
      return 1;
    }
    writer = std::make_unique<recovery::CheckpointWriter>(
        std::move(*writer_or));
  }

  service::DaemonOptions daemon_options;
  daemon_options.socket_path = args.socket;
  daemon_options.poll_interval_ms = args.poll_ms;
  auto daemon = service::AdmitDaemon::Create(service->get(), daemon_options);
  if (!daemon.ok()) {
    std::fprintf(stderr, "daemon: %s\n", daemon.status().ToString().c_str());
    return 1;
  }
  if (writer != nullptr) {
    service::AdmissionService* svc = service->get();
    recovery::CheckpointWriter* w = writer.get();
    (*daemon)->SetCheckpointCallback(
        [svc, w]() -> common::StatusOr<std::string> {
          recovery::Snapshot snapshot;
          snapshot.meta.producer = "zonestream_admitd";
          snapshot.service = svc->ExportState();
          return w->Write(snapshot);
        });
  }

  g_daemon = daemon->get();
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::fprintf(stderr, "zonestream_admitd listening on %s (%zu classes)\n",
               args.socket.c_str(), (*service)->class_count());
  const auto status = (*daemon)->Serve();
  g_daemon = nullptr;
  if (!status.ok()) {
    std::fprintf(stderr, "serve: %s\n", status.ToString().c_str());
    return 1;
  }

  // Exit report: the service.* metrics tables (docs/OBSERVABILITY.md).
  (*service)->FlushObservability();
  std::fputs(service::FormatServiceMetrics(registry.Snapshot()).c_str(),
             stderr);

  // Final durable checkpoint on clean shutdown.
  if (writer != nullptr) {
    recovery::Snapshot snapshot;
    snapshot.meta.producer = "zonestream_admitd";
    snapshot.service = (*service)->ExportState();
    const auto path = writer->Write(snapshot);
    if (!path.ok()) {
      std::fprintf(stderr, "final checkpoint: %s\n",
                   path.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "final checkpoint: %s\n", path->c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--config FILE | --table FILE] "
                 "[--classes name:tol,...] [--scale N] [--shards N] "
                 "[--capacity N] [--checkpoint-dir DIR] [--poll-ms N]\n",
                 argv[0]);
    return 2;
  }
  return Run(args);
}
